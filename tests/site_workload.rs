//! C4 — workload fidelity: the synthetic SawmillCreek must match the
//! facts the paper reports about the real one (§4.2).

use msite_net::{Origin, Request};
use msite_sites::{ForumConfig, ForumSite, PageManifest, ResourceKind};

#[test]
fn entry_page_weight_is_exactly_the_papers() {
    let site = ForumSite::new(ForumConfig::default());
    // "The entry page of the test site requires a total of 224,477 bytes
    // to be received from the network, inclusive of all images, external
    // Javascripts (of which there are about 12), and CSS files."
    assert_eq!(site.total_index_weight(), 224_477);
    let manifest = PageManifest::fetch(&site, &format!("{}/index.php", site.base_url()));
    assert_eq!(manifest.total_bytes(), 224_477);
    let scripts = manifest
        .resources
        .iter()
        .filter(|r| r.kind == ResourceKind::Script)
        .count();
    assert_eq!(scripts, 12);
    assert_eq!(
        manifest
            .resources
            .iter()
            .filter(|r| r.kind == ResourceKind::Stylesheet)
            .count(),
        1
    );
}

#[test]
fn community_scale_matches() {
    let config = ForumConfig::default();
    // "a busy online community with nearly 66,000 members"
    assert!((60_000..66_000).contains(&config.member_count));
    // "a long list of about 30 forum descriptions"
    assert_eq!(config.forum_count, 30);
    // "as many as 1200 users online at a time"
    assert!((1_000..=1_200).contains(&config.online_count));
}

#[test]
fn page_structure_has_every_paper_section_in_order() {
    let site = ForumSite::new(ForumConfig::default());
    let body = site
        .handle(&Request::get(&format!("{}/index.php", site.base_url())).unwrap())
        .body_text();
    // "The site starts with a logo and leader board banner advertisement,
    // followed by a box of navigational links and a login form. Below
    // this is a transient box used for announcements, followed by a long
    // list of about 30 forum descriptions ... a display showing which
    // members are logged in ... a box of site statistics, a list of
    // birthdays, public calendar entries, and finally some additional
    // navigational links."
    let order = [
        "id=\"header\"",
        "id=\"leaderboard\"",
        "id=\"navrow\"",
        "id=\"loginform\"",
        "id=\"announcements\"",
        "id=\"forumbits\"",
        "id=\"whosonline\"",
        "id=\"stats\"",
        "id=\"birthdays\"",
        "id=\"calendar\"",
        "id=\"footerlinks\"",
    ];
    let mut last = 0;
    for marker in order {
        let at = body
            .find(marker)
            .unwrap_or_else(|| panic!("missing {marker}"));
        assert!(at > last, "{marker} out of order");
        last = at;
    }
    // The leaderboard is the paper's 728-px-wide banner.
    assert!(body.contains("width=\"728\" height=\"90\""));
}

#[test]
fn weight_recalibrates_for_other_targets() {
    let site = ForumSite::new(ForumConfig {
        target_page_weight: 300_000,
        ..ForumConfig::default()
    });
    assert_eq!(site.total_index_weight(), 300_000);
}

#[test]
fn different_seeds_different_content_same_weight() {
    let a = ForumSite::new(ForumConfig {
        seed: 1,
        ..ForumConfig::default()
    });
    let b = ForumSite::new(ForumConfig {
        seed: 2,
        ..ForumConfig::default()
    });
    let page_a = a
        .handle(&Request::get(&format!("{}/index.php", a.base_url())).unwrap())
        .body_text();
    let page_b = b
        .handle(&Request::get(&format!("{}/index.php", b.base_url())).unwrap())
        .body_text();
    assert_ne!(page_a, page_b);
    assert_eq!(a.total_index_weight(), 224_477);
    assert_eq!(b.total_index_weight(), 224_477);
}

#[test]
fn dynamic_pages_resolve_from_index_links() {
    let site = ForumSite::new(ForumConfig::default());
    let body = site
        .handle(&Request::get(&format!("{}/index.php", site.base_url())).unwrap())
        .body_text();
    // Every forumdisplay link on the index must resolve.
    let mut checked = 0;
    let mut pos = 0;
    while let Some(at) = body[pos..].find("/forumdisplay.php?f=") {
        let start = pos + at;
        let end = body[start..].find('"').unwrap() + start;
        let path = &body[start..end];
        let resp = site.handle(&Request::get(&format!("{}{}", site.base_url(), path)).unwrap());
        // Public forums serve; private ones redirect to login.
        assert!(
            resp.status.is_success() || resp.status.is_redirect(),
            "{path} -> {}",
            resp.status
        );
        checked += 1;
        pos = end;
    }
    assert_eq!(checked, 30);
}
