//! Failure injection: the proxy must degrade cleanly when the origin
//! misbehaves — 5xx storms, outages, malformed markup, oversized pages —
//! because "the proxy also handles ... any error handling should the
//! page be unavailable".

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{FlakyOrigin, Origin, OriginRef, Request, Response, Status};
use msite_sites::{ForumConfig, ForumSite};
use std::sync::Arc;

fn spec_for(url: &str, snapshot: bool) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("t", url);
    spec.snapshot = snapshot.then(SnapshotSpec::default);
    spec.rule(
        Target::Css("#main".into()),
        vec![Attribute::Subpage {
            id: "main".into(),
            title: "Main".into(),
            ajax: false,
            prerender: false,
        }],
    )
}

#[test]
fn origin_down_yields_bad_gateway_not_panic() {
    let dead: OriginRef = Arc::new(|_req: &Request| {
        Response::error(Status::SERVICE_UNAVAILABLE, "maintenance window")
    });
    let proxy = ProxyServer::new(
        spec_for("http://down.test/", true),
        dead,
        ProxyConfig::default(),
    );
    let entry = proxy.handle(&Request::get("http://p/m/t/").unwrap());
    assert_eq!(entry.status, Status::BAD_GATEWAY);
    // The proxy itself stays alive for subsequent requests.
    let again = proxy.handle(&Request::get("http://p/m/t/").unwrap());
    assert_eq!(again.status, Status::BAD_GATEWAY);
}

#[test]
fn flaky_origin_failures_do_not_poison_the_cache() {
    // The entry page URL deterministically fails under this rate; verify
    // a failing first fetch is not cached as the entry page.
    let healthy: OriginRef = Arc::new(|req: &Request| {
        if req.url.path() == "/index.php" {
            Response::html("<html><body><div id=\"main\">ok</div></body></html>")
        } else {
            Response::error(Status::NOT_FOUND, "nope")
        }
    });
    let flaky = Arc::new(FlakyOrigin::new(
        healthy,
        1.0,
        Status::INTERNAL_SERVER_ERROR,
    ));
    let proxy = ProxyServer::new(
        spec_for("http://flaky.test/index.php", false),
        flaky,
        ProxyConfig::default(),
    );
    let entry = proxy.handle(&Request::get("http://p/m/t/").unwrap());
    assert_eq!(entry.status, Status::BAD_GATEWAY);
    assert!(
        proxy.cache().get("entry:html").is_none(),
        "failure must not be cached"
    );
}

#[test]
fn malformed_origin_markup_still_adapts() {
    let messy: OriginRef = Arc::new(|_req: &Request| {
        Response::html(
            "<html><head><title>Broken</title><body>\
             <div id=\"main\"><table><tr><td>unclosed everything\
             <script>if (a<b) document.write(\"<div>\");</script>\
             <p>more<p>text",
        )
    });
    let proxy = ProxyServer::new(
        spec_for("http://messy.test/", false),
        messy,
        ProxyConfig::default(),
    );
    let entry = proxy.handle(&Request::get("http://p/m/t/").unwrap());
    assert!(entry.status.is_success());
    assert!(entry.body_text().contains("/m/t/s/main.html"));
}

#[test]
fn oversized_page_is_bounded_by_render_cap() {
    // A pathological page: 20k blocks, each 100px tall -> 2M px tall.
    let huge: OriginRef = Arc::new(|_req: &Request| {
        let mut body = String::from("<html><body><div id=\"main\">x</div>");
        for i in 0..20_000 {
            body.push_str(&format!("<div style=\"height:100px\">row {i}</div>"));
        }
        body.push_str("</body></html>");
        Response::html(body)
    });
    let proxy = ProxyServer::new(
        spec_for("http://huge.test/", true),
        huge,
        ProxyConfig::default(),
    );
    let entry = proxy.handle(&Request::get("http://p/m/t/").unwrap());
    assert!(entry.status.is_success());
    // The snapshot height was clamped by the browser's max_page_height
    // (8192) and then halved by the 0.5x snapshot scale.
    let cookie = entry
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string();
    let img = proxy.handle(
        &Request::get("http://p/m/t/img/snapshot.png")
            .unwrap()
            .with_header("cookie", &cookie),
    );
    assert!(img.status.is_success());
    let height = u32::from_be_bytes(img.body[20..24].try_into().unwrap());
    assert!(height <= 4_096, "snapshot height {height}");
}

#[test]
fn empty_origin_body_handled() {
    let empty: OriginRef = Arc::new(|_req: &Request| Response::html(""));
    let proxy = ProxyServer::new(
        spec_for("http://empty.test/", false),
        empty,
        ProxyConfig::default(),
    );
    let entry = proxy.handle(&Request::get("http://p/m/t/").unwrap());
    assert!(entry.status.is_success());
}

#[test]
fn ajax_origin_error_reported_as_bad_gateway() {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let mut spec = AdaptationSpec::new(
        "thread",
        &format!("{}/showthread.php?t=42", site.base_url()),
    );
    spec.snapshot = None;
    let spec = spec.rule(Target::Css("#posts".into()), vec![Attribute::AjaxRewrite]);
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    let entry = proxy.handle(&Request::get("http://p/m/thread/").unwrap());
    let cookie = entry
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string();
    // Without an origin session, showpic returns 403 -> proxy reports 502.
    let frag = proxy.handle(
        &Request::get("http://p/m/thread/proxy?action=1&p=9")
            .unwrap()
            .with_header("cookie", &cookie),
    );
    assert_eq!(frag.status, Status::BAD_GATEWAY);
}

#[test]
fn intermittent_failures_recover_between_requests() {
    use msite_support::sync::Mutex;
    let hits = Arc::new(Mutex::new(0u32));
    let hits2 = Arc::clone(&hits);
    // Fails on the first fetch, succeeds afterwards.
    let recovering: OriginRef = Arc::new(move |_req: &Request| {
        let mut h = hits2.lock();
        *h += 1;
        if *h == 1 {
            Response::error(Status::GATEWAY_TIMEOUT, "first hit times out")
        } else {
            Response::html("<html><body><div id=\"main\">recovered</div></body></html>")
        }
    });
    let proxy = ProxyServer::new(
        spec_for("http://recovering.test/", false),
        recovering,
        ProxyConfig::default(),
    );
    let first = proxy.handle(&Request::get("http://p/m/t/").unwrap());
    assert_eq!(first.status, Status::BAD_GATEWAY);
    let second = proxy.handle(&Request::get("http://p/m/t/").unwrap());
    assert!(second.status.is_success());
    assert!(second.body_text().contains("recovered") || second.body_text().contains("main.html"));
}
