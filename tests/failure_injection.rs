//! Failure injection: the proxy must degrade cleanly when the origin
//! misbehaves — 5xx storms, outages, malformed markup, oversized pages —
//! because "the proxy also handles ... any error handling should the
//! page be unavailable".
//!
//! The chaos matrix at the bottom crosses origin fault modes (down,
//! flaky, slow, truncated, malformed) with snapshot on/off and asserts
//! policy-conformant degradation: no panics, stale snapshots instead of
//! 5xx storms when the cache is warm, breaker trip + half-open
//! recovery, and engine fallback. Every fault draw is seeded, so runs
//! replay exactly.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::engine::{RenderEngine, RenderedArtifact};
use msite::error::{DEGRADED_HEADER, ERROR_HEADER};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::resilience::{BreakerConfig, BreakerState, DeadlineBudget, RetryPolicy};
use msite_net::{FlakyOrigin, Origin, OriginRef, Request, ResiliencePolicy, Response, Status};
use msite_sites::{ForumConfig, ForumSite};
use std::sync::Arc;
use std::time::Duration;

fn spec_for(url: &str, snapshot: bool) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("t", url);
    spec.snapshot = snapshot.then(SnapshotSpec::default);
    spec.rule(
        Target::Css("#main".into()),
        vec![Attribute::Subpage {
            id: "main".into(),
            title: "Main".into(),
            ajax: false,
            prerender: false,
        }],
    )
}

/// A config with millisecond-scale backoff and cooldown so chaos tests
/// run fast while exercising the same state machine as production.
fn fast_config() -> ProxyConfig {
    ProxyConfig {
        resilience: ResiliencePolicy {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(1),
            },
            deadline: DeadlineBudget(Duration::from_secs(5)),
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown: Duration::from_millis(25),
                probe_successes: 1,
            },
            seed: 0xC4A05,
        },
        ..ProxyConfig::default()
    }
}

fn healthy_page() -> OriginRef {
    Arc::new(|_req: &Request| {
        Response::html(
            "<html><head><title>Up</title></head><body>\
             <div id=\"main\">content</div></body></html>",
        )
    })
}

fn entry_request() -> Request {
    Request::get("http://p/m/t/").unwrap()
}

fn cookie_of(response: &Response) -> String {
    response
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string()
}

#[test]
fn origin_down_yields_bad_gateway_not_panic() {
    let dead: OriginRef = Arc::new(|_req: &Request| {
        Response::error(Status::SERVICE_UNAVAILABLE, "maintenance window")
    });
    let proxy = ProxyServer::new(spec_for("http://down.test/", true), dead, fast_config());
    let entry = proxy.handle(&entry_request());
    assert_eq!(entry.status, Status::BAD_GATEWAY);
    assert_eq!(entry.headers.get(ERROR_HEADER), Some("origin-unavailable"));
    // The proxy itself stays alive for subsequent requests; once the
    // breaker trips, failures become breaker rejections, never panics.
    for _ in 0..8 {
        let again = proxy.handle(&entry_request());
        assert!(!again.status.is_success());
        assert!(again.headers.get(ERROR_HEADER).is_some());
    }
    assert!(proxy.resilience_stats().breaker_rejections > 0);
}

#[test]
fn flaky_origin_failures_do_not_poison_the_cache() {
    // The entry page URL deterministically fails under this rate; verify
    // a failing first fetch is not cached as the entry page.
    let healthy: OriginRef = Arc::new(|req: &Request| {
        if req.url.path() == "/index.php" {
            Response::html("<html><body><div id=\"main\">ok</div></body></html>")
        } else {
            Response::error(Status::NOT_FOUND, "nope")
        }
    });
    let flaky = Arc::new(FlakyOrigin::new(
        healthy,
        1.0,
        Status::INTERNAL_SERVER_ERROR,
    ));
    let proxy = ProxyServer::new(
        spec_for("http://flaky.test/index.php", false),
        flaky,
        ProxyConfig::default(),
    );
    let entry = proxy.handle(&entry_request());
    assert_eq!(entry.status, Status::BAD_GATEWAY);
    assert!(
        proxy.cache().get("entry:html").is_none(),
        "failure must not be cached"
    );
}

#[test]
fn transient_failures_are_absorbed_by_retries() {
    use msite_support::sync::Mutex;
    let hits = Arc::new(Mutex::new(0u32));
    let hits2 = Arc::clone(&hits);
    // Fails on the first fetch, succeeds afterwards: the retry loop
    // absorbs the hiccup so even the FIRST client request succeeds.
    let recovering: OriginRef = Arc::new(move |_req: &Request| {
        let mut h = hits2.lock();
        *h += 1;
        if *h == 1 {
            Response::error(Status::GATEWAY_TIMEOUT, "first hit times out")
        } else {
            Response::html("<html><body><div id=\"main\">recovered</div></body></html>")
        }
    });
    let proxy = ProxyServer::new(
        spec_for("http://recovering.test/", false),
        recovering,
        fast_config(),
    );
    let first = proxy.handle(&entry_request());
    assert!(first.status.is_success(), "retry should mask the hiccup");
    assert!(first.body_text().contains("main.html"));
    assert!(proxy.resilience_stats().retries >= 1);
    assert_eq!(proxy.stats().failures, 0);
}

#[test]
fn warm_cache_serves_stale_instead_of_5xx_storm() {
    // Healthy warm-up, then a hard outage: expired entry + snapshot are
    // served stale (with Warning) rather than each request failing.
    let flaky = Arc::new(
        FlakyOrigin::new(healthy_page(), 0.0, Status::SERVICE_UNAVAILABLE)
            .with_outage_window(1, u64::MAX),
    );
    let proxy = ProxyServer::new(
        spec_for("http://storm.test/", true),
        Arc::clone(&flaky) as OriginRef,
        fast_config(),
    );

    let warm = proxy.handle(&entry_request());
    assert!(warm.status.is_success());
    let cookie = cookie_of(&warm);

    // Let the snapshot TTL lapse; entries stay within the stale window.
    proxy.cache().advance_clock(Duration::from_secs(3_601));

    let mut stale_seen = 0;
    for _ in 0..12 {
        let entry = proxy.handle(
            &Request::get("http://p/m/t/")
                .unwrap()
                .with_header("cookie", &cookie),
        );
        assert!(
            entry.status.is_success(),
            "outage must degrade, not 5xx: got {}",
            entry.status
        );
        if entry.headers.get(DEGRADED_HEADER).is_some() {
            assert_eq!(
                entry.headers.get("warning"),
                Some("110 msite \"Response is stale\"")
            );
            stale_seen += 1;
        }
    }
    assert_eq!(stale_seen, 12, "every outage answer should be marked stale");
    assert!(proxy.stats().stale_served >= 12);
    // The snapshot image degrades the same way.
    let img = proxy.handle(
        &Request::get("http://p/m/t/img/snapshot.png")
            .unwrap()
            .with_header("cookie", &cookie),
    );
    assert!(img.status.is_success());
    assert!(img
        .headers
        .get(DEGRADED_HEADER)
        .unwrap()
        .starts_with("stale"));
    // Sustained failures tripped the breaker, so most of the 12 rounds
    // never hammered the dead origin at all.
    assert_eq!(proxy.breaker_state("storm.test"), BreakerState::Open);
    assert!(proxy.resilience_stats().breaker_rejections > 0);
}

#[test]
fn breaker_opens_at_threshold_and_recovers_via_probe() {
    // Outage for the first 4 origin hits (the breaker threshold), then
    // healthy: the breaker must trip, reject, and close via a probe.
    let flaky = Arc::new(
        FlakyOrigin::new(healthy_page(), 0.0, Status::INTERNAL_SERVER_ERROR)
            .with_outage_window(0, 4),
    );
    let proxy = ProxyServer::new(
        spec_for("http://trip.test/", false),
        Arc::clone(&flaky) as OriginRef,
        fast_config(),
    );

    // Request 1 burns 3 attempts (failures 1..3); request 2's first
    // attempt is failure 4, which trips the breaker mid-retry-loop.
    assert_eq!(proxy.handle(&entry_request()).status, Status::BAD_GATEWAY);
    assert_eq!(proxy.handle(&entry_request()).status, Status::BAD_GATEWAY);
    assert_eq!(proxy.breaker_state("trip.test"), BreakerState::Open);

    // While open: rejected up front, origin never contacted.
    let rejected = proxy.handle(&entry_request());
    assert_eq!(rejected.status, Status::SERVICE_UNAVAILABLE);
    assert_eq!(rejected.headers.get(ERROR_HEADER), Some("breaker-open"));
    let hammered = flaky.fault_stats().requests;

    // After the cooldown, a half-open probe hits the (now healthy)
    // origin and closes the breaker; service resumes.
    std::thread::sleep(Duration::from_millis(30));
    let recovered = proxy.handle(&entry_request());
    assert!(recovered.status.is_success());
    assert_eq!(proxy.breaker_state("trip.test"), BreakerState::Closed);
    assert_eq!(flaky.fault_stats().requests, hammered + 1);
    let stats = proxy.resilience_stats();
    assert!(stats.breaker_rejections >= 1);
    assert!(stats.successes >= 1);
}

#[test]
fn deadline_exhaustion_is_reported_as_gateway_timeout() {
    // A slow, failing origin against a tiny budget: the retry loop must
    // stop at the deadline and say so.
    let slow_dead = Arc::new(
        FlakyOrigin::new(healthy_page(), 1.0, Status::INTERNAL_SERVER_ERROR)
            .with_latency(Duration::from_millis(3), Duration::ZERO),
    );
    let mut config = fast_config();
    config.resilience.deadline = DeadlineBudget(Duration::from_millis(4));
    config.resilience.retry.base_backoff = Duration::from_millis(5);
    let proxy = ProxyServer::new(
        spec_for("http://slow.test/", false),
        slow_dead as OriginRef,
        config,
    );
    let entry = proxy.handle(&entry_request());
    assert_eq!(entry.status, Status::GATEWAY_TIMEOUT);
    assert_eq!(entry.headers.get(ERROR_HEADER), Some("deadline-exceeded"));
    assert!(proxy.resilience_stats().deadline_exhausted >= 1);
}

struct CrashingImageEngine;

impl RenderEngine for CrashingImageEngine {
    fn name(&self) -> &str {
        "image"
    }
    fn render(&self, _html: &str) -> RenderedArtifact {
        panic!("simulated renderer crash");
    }
}

#[test]
fn failing_image_engine_degrades_down_the_chain() {
    let mut proxy = ProxyServer::new(
        spec_for("http://render.test/", false),
        healthy_page(),
        fast_config(),
    );
    proxy.register_engine(Box::new(CrashingImageEngine));
    let rendered = proxy.handle(&Request::get("http://p/m/t/render/image").unwrap());
    assert!(rendered.status.is_success());
    assert_eq!(rendered.headers.get("x-msite-engine"), Some("html"));
    assert_eq!(
        rendered.headers.get(DEGRADED_HEADER),
        Some("engine-fallback; from=image")
    );
    assert!(proxy.stats().engine_fallbacks >= 1);
}

#[test]
fn malformed_origin_markup_still_adapts() {
    let messy: OriginRef = Arc::new(|_req: &Request| {
        Response::html(
            "<html><head><title>Broken</title><body>\
             <div id=\"main\"><table><tr><td>unclosed everything\
             <script>if (a<b) document.write(\"<div>\");</script>\
             <p>more<p>text",
        )
    });
    let proxy = ProxyServer::new(spec_for("http://messy.test/", false), messy, fast_config());
    let entry = proxy.handle(&entry_request());
    assert!(entry.status.is_success());
    assert!(entry.body_text().contains("/m/t/s/main.html"));
}

#[test]
fn truncated_and_garbled_bodies_never_panic_the_pipeline() {
    for (truncate, malformed) in [(1.0, 0.0), (0.0, 1.0)] {
        let flaky = Arc::new(
            FlakyOrigin::new(healthy_page(), 0.0, Status::SERVICE_UNAVAILABLE)
                .with_seed(0xB0D1E5)
                .with_truncated_bodies(truncate)
                .with_malformed_bodies(malformed),
        );
        let proxy = ProxyServer::new(
            spec_for("http://cutoff.test/", false),
            Arc::clone(&flaky) as OriginRef,
            fast_config(),
        );
        let entry = proxy.handle(&entry_request());
        // Damaged-but-2xx bodies flow into the tidy pipeline, which must
        // absorb them: any complete response (success or classified
        // failure) is acceptable, panicking is not.
        assert!(entry.status.is_success() || entry.headers.get(ERROR_HEADER).is_some());
        let stats = flaky.fault_stats();
        assert!(stats.truncated + stats.malformed >= 1, "fault not injected");
    }
}

#[test]
fn oversized_page_is_bounded_by_render_cap() {
    // A pathological page: 20k blocks, each 100px tall -> 2M px tall.
    let huge: OriginRef = Arc::new(|_req: &Request| {
        let mut body = String::from("<html><body><div id=\"main\">x</div>");
        for i in 0..20_000 {
            body.push_str(&format!("<div style=\"height:100px\">row {i}</div>"));
        }
        body.push_str("</body></html>");
        Response::html(body)
    });
    let proxy = ProxyServer::new(
        spec_for("http://huge.test/", true),
        huge,
        ProxyConfig::default(),
    );
    let entry = proxy.handle(&entry_request());
    assert!(entry.status.is_success());
    // The snapshot height was clamped by the browser's max_page_height
    // (8192) and then halved by the 0.5x snapshot scale.
    let cookie = cookie_of(&entry);
    let img = proxy.handle(
        &Request::get("http://p/m/t/img/snapshot.png")
            .unwrap()
            .with_header("cookie", &cookie),
    );
    assert!(img.status.is_success());
    let height = u32::from_be_bytes(img.body[20..24].try_into().unwrap());
    assert!(height <= 4_096, "snapshot height {height}");
}

#[test]
fn empty_origin_body_handled() {
    let empty: OriginRef = Arc::new(|_req: &Request| Response::html(""));
    let proxy = ProxyServer::new(spec_for("http://empty.test/", false), empty, fast_config());
    let entry = proxy.handle(&entry_request());
    assert!(entry.status.is_success());
}

#[test]
fn ajax_origin_error_reported_as_bad_gateway() {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let mut spec = AdaptationSpec::new(
        "thread",
        &format!("{}/showthread.php?t=42", site.base_url()),
    );
    spec.snapshot = None;
    let spec = spec.rule(Target::Css("#posts".into()), vec![Attribute::AjaxRewrite]);
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    let entry = proxy.handle(&Request::get("http://p/m/thread/").unwrap());
    let cookie = cookie_of(&entry);
    // Without an origin session, showpic returns 403 -> proxy reports 502.
    let frag = proxy.handle(
        &Request::get("http://p/m/thread/proxy?action=1&p=9")
            .unwrap()
            .with_header("cookie", &cookie),
    );
    assert_eq!(frag.status, Status::BAD_GATEWAY);
    assert_eq!(frag.headers.get(ERROR_HEADER), Some("origin-unavailable"));
}

#[test]
fn garbled_chunk_modes_yield_typed_decode_errors() {
    use msite_net::{decode_chunked, garble_chunked, ChunkedError, GARBLED_CHUNK_MODES};
    let payload = b"<html><body><div id=\"main\">chunked</div></body></html>";
    for (mode, name) in GARBLED_CHUNK_MODES.iter().enumerate() {
        let wire = garble_chunked(payload, mode);
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let err = decode_chunked(&mut reader)
            .expect_err(&format!("mode {name} must fail decoding, not succeed"));
        // Each sub-mode maps to its own typed error — no panic, no hang,
        // no string matching needed to classify the fault.
        match (mode, &err) {
            (0, ChunkedError::Truncated { .. })
            | (1, ChunkedError::BadSizeLine(_))
            | (2, ChunkedError::OversizedChunk { .. })
            | (3, ChunkedError::MissingCrlf) => {}
            _ => panic!("mode {name}: unexpected error {err:?}"),
        }
        // And each converts into a classified io::Error for transports.
        let io: std::io::Error = err.into();
        assert!(
            matches!(
                io.kind(),
                std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
            ),
            "mode {name}: kind {:?}",
            io.kind()
        );
    }
}

#[test]
fn flaky_origin_garbled_chunks_are_injected_and_absorbed() {
    // Force the garbled-chunk fault on every response and verify (a) the
    // injection is observable via stats + header, (b) the resulting
    // framing always fails typed decoding, and (c) the proxy pipeline
    // absorbs the damaged body without panicking.
    use msite_net::{decode_chunked, ChunkedError};
    let flaky = Arc::new(
        FlakyOrigin::new(healthy_page(), 0.0, Status::SERVICE_UNAVAILABLE)
            .with_seed(0xC4E6)
            .with_garbled_chunks(1.0),
    );
    let mut modes_seen = std::collections::BTreeSet::new();
    for i in 0..24 {
        let response = flaky.handle(&Request::get(&format!("http://h/p{i}")).unwrap());
        let mode = response
            .headers
            .get("x-flaky-garbled-chunk")
            .expect("garbled response must be tagged")
            .to_string();
        modes_seen.insert(mode.clone());
        let mut reader = std::io::BufReader::new(&response.body[..]);
        let err = decode_chunked(&mut reader).expect_err("garbled framing must not decode");
        assert!(
            !matches!(err, ChunkedError::Io(_)),
            "p{i} ({mode}): want a framing error, got {err:?}"
        );
    }
    assert_eq!(flaky.fault_stats().garbled_chunks, 24);
    assert!(
        modes_seen.len() >= 3,
        "seeded coin should cover most sub-modes, saw {modes_seen:?}"
    );

    let proxy = ProxyServer::new(
        spec_for("http://garbled.test/", false),
        Arc::clone(&flaky) as OriginRef,
        fast_config(),
    );
    let entry = proxy.handle(&entry_request());
    assert!(entry.status.is_success() || entry.headers.get(ERROR_HEADER).is_some());
}

/// The full chaos matrix: every fault mode x snapshot on/off, a burst
/// of requests across every endpoint class, and one invariant — the
/// proxy always answers, and failures are always classified.
#[test]
fn chaos_matrix_always_answers_and_classifies() {
    #[derive(Clone, Copy, Debug)]
    enum Mode {
        Down,
        Flaky,
        Slow,
        Truncated,
        Malformed,
    }
    let modes = [
        Mode::Down,
        Mode::Flaky,
        Mode::Slow,
        Mode::Truncated,
        Mode::Malformed,
    ];
    for mode in modes {
        for snapshot in [false, true] {
            let origin: OriginRef = match mode {
                Mode::Down => Arc::new(FlakyOrigin::new(
                    healthy_page(),
                    1.0,
                    Status::SERVICE_UNAVAILABLE,
                )),
                Mode::Flaky => Arc::new(
                    FlakyOrigin::new(healthy_page(), 0.3, Status::INTERNAL_SERVER_ERROR)
                        .with_seed(0xF1A4)
                        .per_attempt(),
                ),
                Mode::Slow => Arc::new(
                    FlakyOrigin::new(healthy_page(), 0.0, Status::SERVICE_UNAVAILABLE)
                        .with_latency(Duration::from_micros(300), Duration::from_micros(300)),
                ),
                Mode::Truncated => Arc::new(
                    FlakyOrigin::new(healthy_page(), 0.0, Status::SERVICE_UNAVAILABLE)
                        .with_seed(0x7A11)
                        .with_truncated_bodies(0.5),
                ),
                Mode::Malformed => Arc::new(
                    FlakyOrigin::new(healthy_page(), 0.0, Status::SERVICE_UNAVAILABLE)
                        .with_seed(0x9A4B)
                        .with_malformed_bodies(0.5),
                ),
            };
            let proxy = ProxyServer::new(
                spec_for("http://chaos.test/", snapshot),
                origin,
                fast_config(),
            );
            let paths = [
                "/m/t/",
                "/m/t/s/main.html",
                "/m/t/img/snapshot.png",
                "/m/t/render/text",
                "/m/t/proxy?action=0",
                "/m/t/nonsense",
            ];
            for round in 0..3 {
                for path in paths {
                    let response = proxy.handle(&Request::get(&format!("http://p{path}")).unwrap());
                    assert!(
                        response.status.is_success()
                            || response.status.is_redirect()
                            || response.headers.get(ERROR_HEADER).is_some(),
                        "{mode:?} snapshot={snapshot} round={round} {path}: \
                         unclassified failure {}",
                        response.status
                    );
                }
            }
            // Counters reconcile: every classified failure was counted.
            let stats = proxy.stats();
            assert_eq!(
                stats.requests,
                3 * paths.len() as u64,
                "{mode:?} snapshot={snapshot}"
            );
        }
    }
}
