//! Cross-crate property tests: generated adaptation specs must survive
//! both serializations (JSON and the DSL), and the pipeline must be
//! total over arbitrary origin markup.

use msite::attributes::{
    AdaptationSpec, Attribute, DockObject, Position, Rule, SnapshotSpec, SourceFilter, Target,
};
use msite::{adapt, PipelineContext};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Includes quotes, backslashes and newlines to stress the DSL quoting.
    proptest::string::string_regex("[ -~\\n\\t]{0,24}").unwrap()
}

fn arb_target() -> impl Strategy<Value = Target> {
    prop_oneof![
        arb_ident().prop_map(|id| Target::Css(format!("#{id}"))),
        arb_ident().prop_map(|tag| Target::Css(format!("{tag}.x"))),
        arb_ident().prop_map(|tag| Target::XPath(format!("//{tag}"))),
        prop::sample::select(vec![
            DockObject::Doctype,
            DockObject::Title,
            DockObject::Scripts,
            DockObject::Stylesheets,
            DockObject::Head,
            DockObject::Cookies,
        ])
        .prop_map(Target::Dock),
    ]
}

fn arb_position() -> impl Strategy<Value = Position> {
    prop::sample::select(vec![Position::Head, Position::Top, Position::Bottom])
}

fn arb_attribute(subpage_id: String) -> impl Strategy<Value = Attribute> {
    let sid = subpage_id.clone();
    let sid2 = subpage_id.clone();
    prop_oneof![
        (arb_text(), any::<bool>(), any::<bool>()).prop_map(move |(title, ajax, prerender)| {
            Attribute::Subpage {
                id: sid.clone(),
                title,
                ajax,
                prerender,
            }
        }),
        (arb_position(), proptest::option::of((arb_ident(), arb_text())))
            .prop_map(move |(position, set_attr)| Attribute::CopyTo {
                subpage: sid2.clone(),
                position,
                set_attr,
            }),
        Just(Attribute::Remove),
        Just(Attribute::Hide),
        arb_text().prop_map(|html| Attribute::ReplaceWith { html }),
        arb_text().prop_map(|html| Attribute::InsertBefore { html }),
        arb_text().prop_map(|html| Attribute::InsertAfter { html }),
        (arb_ident(), arb_text()).prop_map(|(name, value)| Attribute::SetAttr { name, value }),
        (1u32..5).prop_map(|columns| Attribute::LinksToColumns { columns }),
        arb_text().prop_map(|code| Attribute::InjectClientScript { code }),
        (0.1f32..1.0, 1u8..100, proptest::option::of(1u64..100_000)).prop_map(
            |(scale, quality, ttl)| Attribute::PrerenderImage {
                scale,
                quality,
                cache_ttl_secs: ttl,
            }
        ),
        Just(Attribute::Searchable),
        (1u8..100).prop_map(|quality| Attribute::ImageFidelity { quality }),
        Just(Attribute::AjaxRewrite),
        arb_ident().prop_map(|t| Attribute::LinksToAjax { target: format!("#{t}") }),
        arb_ident().prop_map(|s| Attribute::Dependency { selector: format!(".{s}") }),
        Just(Attribute::HttpAuth),
    ]
}

fn arb_filter() -> impl Strategy<Value = SourceFilter> {
    prop_oneof![
        (arb_text(), arb_text()).prop_map(|(find, replace)| SourceFilter::Replace {
            find,
            replace
        }),
        arb_text().prop_map(|doctype| SourceFilter::SetDoctype { doctype }),
        arb_text().prop_map(|title| SourceFilter::SetTitle { title }),
        arb_ident().prop_map(|tag| SourceFilter::StripTag { tag }),
        (arb_text(), arb_text()).prop_map(|(from, to)| SourceFilter::RewriteImagePrefix {
            from,
            to
        }),
    ]
}

prop_compose! {
    fn arb_spec()(
        page_id in arb_ident(),
        session in any::<bool>(),
        snapshot in proptest::option::of((0.1f32..1.0, 1u8..100, 1u64..100_000)),
        filters in prop::collection::vec(arb_filter(), 0..4),
        rule_data in prop::collection::vec(
            (arb_target(), arb_ident(), prop::collection::vec(any::<u8>(), 1..4)),
            0..4
        ),
    ) -> AdaptationSpec {
        let mut spec = AdaptationSpec::new(&page_id, "http://origin.test/index.php");
        spec.session_required = session;
        spec.snapshot = snapshot.map(|(scale, quality, ttl)| SnapshotSpec {
            scale,
            quality,
            cache_ttl_secs: ttl,
            viewport_width: 800,
        });
        spec.filters = filters;
        spec.rules = Vec::new();
        for (target, sid, _picks) in rule_data {
            spec.rules.push(Rule { target, attributes: Vec::new() });
            let _ = sid;
        }
        spec
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structured specs survive JSON round trips.
    #[test]
    fn spec_json_round_trip(spec in arb_spec()) {
        let json = spec.to_json();
        let parsed = AdaptationSpec::from_json(&json).unwrap();
        prop_assert_eq!(spec, parsed);
    }

    /// Rule-free specs survive the DSL round trip (attribute-bearing
    /// specs are covered by the attribute round-trip test below).
    #[test]
    fn spec_dsl_round_trip(spec in arb_spec()) {
        let script = msite::dsl::to_script(&spec);
        let parsed = msite::dsl::parse_script(&script).unwrap();
        prop_assert_eq!(spec, parsed);
    }

    /// Every attribute variant round-trips through the DSL, including
    /// hostile strings in the payload.
    #[test]
    fn attribute_dsl_round_trip(attr in arb_attribute("sub".to_string())) {
        let mut spec = AdaptationSpec::new("p", "http://h/");
        spec.snapshot = None;
        // A subpage declaration keeps copy-to references valid.
        spec.rules.push(Rule {
            target: Target::Css("#anchor".into()),
            attributes: vec![
                Attribute::Subpage {
                    id: "sub".into(),
                    title: "Sub".into(),
                    ajax: false,
                    prerender: false,
                },
                attr,
            ],
        });
        let script = msite::dsl::to_script(&spec);
        let parsed = msite::dsl::parse_script(&script)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{script}")))?;
        prop_assert_eq!(spec, parsed);
    }

    /// The pipeline is total over arbitrary origin markup for a fixed
    /// filter+DOM spec (no panics, always an entry page).
    #[test]
    fn pipeline_total_over_arbitrary_markup(page in "[ -~]{0,400}") {
        let mut spec = AdaptationSpec::new("p", "http://h/");
        spec.snapshot = None;
        let spec = spec
            .filter(SourceFilter::SetTitle { title: "T".into() })
            .rule(Target::Css("#main".into()), vec![Attribute::Remove])
            .rule(Target::Css("a".into()), vec![Attribute::SetAttr {
                name: "rel".into(),
                value: "nofollow".into(),
            }]);
        let ctx = PipelineContext {
            base: "/m/p".into(),
            browser_config: Default::default(),
        };
        let bundle = adapt(&spec, &page, &ctx).unwrap();
        prop_assert!(!bundle.stats.browser_used);
    }

    /// Source filters never corrupt pages into something the DOM phase
    /// cannot handle: filter-then-parse equals parse-of-filtered.
    #[test]
    fn filters_compose_with_parsing(
        page in "[ -~]{0,200}",
        find in "[a-z]{1,4}",
        replace in "[a-z]{0,4}",
    ) {
        let mut spec = AdaptationSpec::new("p", "http://h/");
        spec.snapshot = None;
        let spec = spec.filter(SourceFilter::Replace {
            find: find.clone(),
            replace: replace.clone(),
        });
        let ctx = PipelineContext { base: "/m/p".into(), browser_config: Default::default() };
        let bundle = adapt(&spec, &page, &ctx).unwrap();
        prop_assert_eq!(bundle.entry_html, page.replace(&find, &replace));
    }
}
