//! Cross-crate property tests: generated adaptation specs must survive
//! both serializations (JSON and the DSL), and the pipeline must be
//! total over arbitrary origin markup.

use msite::attributes::{
    AdaptationSpec, Attribute, DockObject, Position, Rule, SnapshotSpec, SourceFilter, Target,
};
use msite::{adapt, PipelineContext};
use msite_support::prop::{self, Gen};

fn arb_text(g: &mut Gen) -> String {
    // Includes quotes, backslashes and newlines to stress the DSL quoting.
    g.ascii_ws_string(24)
}

fn arb_target(g: &mut Gen) -> Target {
    const DOCKS: [DockObject; 6] = [
        DockObject::Doctype,
        DockObject::Title,
        DockObject::Scripts,
        DockObject::Stylesheets,
        DockObject::Head,
        DockObject::Cookies,
    ];
    match g.range_u32(0, 4) {
        0 => Target::Css(format!("#{}", g.ident(10))),
        1 => Target::Css(format!("{}.x", g.ident(10))),
        2 => Target::XPath(format!("//{}", g.ident(10))),
        _ => Target::Dock(*g.pick(&DOCKS)),
    }
}

fn arb_position(g: &mut Gen) -> Position {
    *g.pick(&[Position::Head, Position::Top, Position::Bottom])
}

fn arb_attribute(g: &mut Gen, subpage_id: &str) -> Attribute {
    match g.range_u32(0, 17) {
        0 => Attribute::Subpage {
            id: subpage_id.to_string(),
            title: arb_text(g),
            ajax: g.bool(),
            prerender: g.bool(),
        },
        1 => Attribute::CopyTo {
            subpage: subpage_id.to_string(),
            position: arb_position(g),
            set_attr: g.option(|g| (g.ident(10), arb_text(g))),
        },
        2 => Attribute::Remove,
        3 => Attribute::Hide,
        4 => Attribute::ReplaceWith { html: arb_text(g) },
        5 => Attribute::InsertBefore { html: arb_text(g) },
        6 => Attribute::InsertAfter { html: arb_text(g) },
        7 => Attribute::SetAttr {
            name: g.ident(10),
            value: arb_text(g),
        },
        8 => Attribute::LinksToColumns {
            columns: g.range_u32(1, 5),
        },
        9 => Attribute::InjectClientScript { code: arb_text(g) },
        10 => Attribute::PrerenderImage {
            scale: g.range_f32(0.1, 1.0),
            quality: g.range_u8(1, 100),
            cache_ttl_secs: g.option(|g| g.range_u64(1, 100_000)),
        },
        11 => Attribute::Searchable,
        12 => Attribute::ImageFidelity {
            quality: g.range_u8(1, 100),
        },
        13 => Attribute::AjaxRewrite,
        14 => Attribute::LinksToAjax {
            target: format!("#{}", g.ident(10)),
        },
        15 => Attribute::Dependency {
            selector: format!(".{}", g.ident(10)),
        },
        _ => Attribute::HttpAuth,
    }
}

fn arb_filter(g: &mut Gen) -> SourceFilter {
    match g.range_u32(0, 5) {
        0 => SourceFilter::Replace {
            find: arb_text(g),
            replace: arb_text(g),
        },
        1 => SourceFilter::SetDoctype {
            doctype: arb_text(g),
        },
        2 => SourceFilter::SetTitle { title: arb_text(g) },
        3 => SourceFilter::StripTag { tag: g.ident(10) },
        _ => SourceFilter::RewriteImagePrefix {
            from: arb_text(g),
            to: arb_text(g),
        },
    }
}

fn arb_spec(g: &mut Gen) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new(&g.ident(10), "http://origin.test/index.php");
    spec.session_required = g.bool();
    spec.snapshot = g.option(|g| SnapshotSpec {
        scale: g.range_f32(0.1, 1.0),
        quality: g.range_u8(1, 100),
        cache_ttl_secs: g.range_u64(1, 100_000),
        viewport_width: 800,
    });
    spec.filters = g.vec(0, 3, arb_filter);
    spec.rules = g
        .vec(0, 3, arb_target)
        .into_iter()
        .map(|target| Rule {
            target,
            attributes: Vec::new(),
        })
        .collect();
    spec
}

/// Structured specs survive JSON round trips.
#[test]
fn spec_json_round_trip() {
    prop::check("spec json round-trip", 64, 0x0A11_5BEC, |g| {
        let spec = arb_spec(g);
        let json = spec.to_json();
        let parsed = AdaptationSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
    });
}

/// Rule-free specs survive the DSL round trip (attribute-bearing specs
/// are covered by the attribute round-trip test below).
#[test]
fn spec_dsl_round_trip() {
    prop::check("spec dsl round-trip", 64, 0x0A11_5BED, |g| {
        let spec = arb_spec(g);
        let script = msite::dsl::to_script(&spec);
        let parsed = msite::dsl::parse_script(&script).unwrap();
        assert_eq!(spec, parsed);
    });
}

/// Every attribute variant round-trips through the DSL, including
/// hostile strings in the payload.
#[test]
fn attribute_dsl_round_trip() {
    prop::check("attribute dsl round-trip", 64, 0x0A11_5BEE, |g| {
        let attr = arb_attribute(g, "sub");
        let mut spec = AdaptationSpec::new("p", "http://h/");
        spec.snapshot = None;
        // A subpage declaration keeps copy-to references valid.
        spec.rules.push(Rule {
            target: Target::Css("#anchor".into()),
            attributes: vec![
                Attribute::Subpage {
                    id: "sub".into(),
                    title: "Sub".into(),
                    ajax: false,
                    prerender: false,
                },
                attr,
            ],
        });
        let script = msite::dsl::to_script(&spec);
        let parsed = match msite::dsl::parse_script(&script) {
            Ok(parsed) => parsed,
            Err(e) => panic!("{e}\n{script}"),
        };
        assert_eq!(spec, parsed);
    });
}

/// The pipeline is total over arbitrary origin markup for a fixed
/// filter+DOM spec (no panics, always an entry page).
#[test]
fn pipeline_total_over_arbitrary_markup() {
    prop::check(
        "pipeline total over arbitrary markup",
        64,
        0x0A11_5BEF,
        |g| {
            let page = g.ascii_string(400);
            let mut spec = AdaptationSpec::new("p", "http://h/");
            spec.snapshot = None;
            let spec = spec
                .filter(SourceFilter::SetTitle { title: "T".into() })
                .rule(Target::Css("#main".into()), vec![Attribute::Remove])
                .rule(
                    Target::Css("a".into()),
                    vec![Attribute::SetAttr {
                        name: "rel".into(),
                        value: "nofollow".into(),
                    }],
                );
            let ctx = PipelineContext {
                base: "/m/p".into(),
                browser_config: Default::default(),
                ..Default::default()
            };
            let bundle = adapt(&spec, &page, &ctx).unwrap();
            assert!(!bundle.stats.browser_used);
        },
    );
}

/// Source filters never corrupt pages into something the DOM phase
/// cannot handle: filter-then-parse equals parse-of-filtered.
#[test]
fn filters_compose_with_parsing() {
    prop::check("filters compose with parsing", 64, 0x0A11_5BF0, |g| {
        let page = g.ascii_string(200);
        let find = g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 4);
        let replace = g.string_from("abcdefghijklmnopqrstuvwxyz", 0, 4);
        let mut spec = AdaptationSpec::new("p", "http://h/");
        spec.snapshot = None;
        let spec = spec.filter(SourceFilter::Replace {
            find: find.clone(),
            replace: replace.clone(),
        });
        let ctx = PipelineContext {
            base: "/m/p".into(),
            browser_config: Default::default(),
            ..Default::default()
        };
        let bundle = adapt(&spec, &page, &ctx).unwrap();
        assert_eq!(bundle.entry_html, page.replace(&find, &replace));
    });
}
