//! The whole stack over real sockets: forum origin and m.Site proxy as
//! actual HTTP servers, exercised by the real client.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{http_get, http_request, HttpServer, OriginRef, Request, Response, Status};
use msite_sites::{ForumConfig, ForumSite};
use std::sync::Arc;

struct Stack {
    origin_server: HttpServer,
    proxy_server: HttpServer,
}

impl Stack {
    fn up() -> Stack {
        let site = Arc::new(ForumSite::new(ForumConfig {
            host: "127.0.0.1".to_string(),
            ..ForumConfig::default()
        }));
        let origin_server =
            HttpServer::bind("127.0.0.1:0", Arc::clone(&site) as OriginRef).unwrap();
        let origin_url = format!("http://{}/index.php", origin_server.addr());

        let origin_client: OriginRef = Arc::new(move |req: &Request| {
            http_request(req)
                .unwrap_or_else(|e| Response::error(Status::BAD_GATEWAY, &e.to_string()))
        });
        let mut spec = AdaptationSpec::new("forum", &origin_url);
        spec.snapshot = Some(SnapshotSpec {
            scale: 0.5,
            quality: 40,
            cache_ttl_secs: 600,
            viewport_width: 800,
        });
        let spec = spec.rule(
            Target::Css("#loginform".into()),
            vec![Attribute::Subpage {
                id: "login".into(),
                title: "Log in".into(),
                ajax: false,
                prerender: false,
            }],
        );
        let proxy = Arc::new(ProxyServer::new(
            spec,
            origin_client,
            ProxyConfig::default(),
        ));
        let proxy_server = HttpServer::bind("127.0.0.1:0", proxy as OriginRef).unwrap();
        Stack {
            origin_server,
            proxy_server,
        }
    }

    fn down(self) {
        self.proxy_server.shutdown();
        self.origin_server.shutdown();
    }
}

#[test]
fn full_mobile_flow_over_tcp() {
    let stack = Stack::up();
    let base = format!("http://{}/m/forum", stack.proxy_server.addr());

    let entry = http_get(&format!("{base}/")).unwrap();
    assert!(entry.status.is_success());
    assert!(entry.body_text().contains("snapshot.png"));
    let cookie = entry
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string();

    let snapshot = http_request(
        &Request::get(&format!("{base}/img/snapshot.png"))
            .unwrap()
            .with_header("cookie", &cookie),
    )
    .unwrap();
    assert!(snapshot.status.is_success());
    assert!(snapshot.body.starts_with(&[0x89, b'P', b'N', b'G']));
    assert!(snapshot.body.len() > 10_000);

    let login = http_request(
        &Request::get(&format!("{base}/s/login.html"))
            .unwrap()
            .with_header("cookie", &cookie),
    )
    .unwrap();
    assert!(login.status.is_success());
    assert!(login.body_text().contains("vb_login_username"));

    // The origin saw the proxy's fetches, not the client directly.
    assert!(stack.origin_server.requests_served() >= 2);
    stack.down();
}

#[test]
fn concurrent_tcp_clients() {
    let stack = Stack::up();
    let base = format!("http://{}/m/forum/", stack.proxy_server.addr());
    // Warm serially, then hammer.
    assert!(http_get(&base).unwrap().status.is_success());
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let base = base.clone();
            std::thread::spawn(move || http_get(&base).unwrap().status)
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap().is_success());
    }
    stack.down();
}
