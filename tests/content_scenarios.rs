//! Content-adaptation conformance: a real `HttpServer` on a loopback
//! socket in front of a real `ProxyServer` adapting the ad-heavy
//! [`NewsSite`] fixture, exercised by real TCP clients.
//!
//! Each scenario pins one content-aware attribute end to end:
//! - `extract-main-content` keeps the article and drops every
//!   boilerplate region;
//! - `strip-boilerplate` removes exactly the regions its
//!   aggressiveness admits, with exact `msite_blocks_stripped_total`
//!   deltas per kind;
//! - `fidelity-tier auto` resolves the client's bandwidth class and
//!   re-encodes gallery images so 2G wire bytes land strictly below
//!   WiFi, with exact `msite_fidelity_tier` deltas;
//! - adapted output is byte-identical across pipeline parallelism
//!   widths.

use msite::attributes::{AdaptationSpec, Attribute, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{http_get, http_request, HttpServer, OriginRef, Request, Response};
use msite_sites::{NewsConfig, NewsSite};
use msite_support::telemetry::Telemetry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One proxy + one HTTP server wired through a shared telemetry handle.
struct Stack {
    server: HttpServer,
}

impl Stack {
    fn up(spec: AdaptationSpec, origin: OriginRef, config: ProxyConfig) -> Stack {
        let mut config = config;
        if config.telemetry.is_none() {
            config.telemetry = Some(Telemetry::new());
        }
        let telemetry = config.telemetry.clone().unwrap();
        let proxy = Arc::new(ProxyServer::new(spec, origin, config));
        let server = HttpServer::bind_with_telemetry(
            "127.0.0.1:0",
            proxy as OriginRef,
            Default::default(),
            telemetry,
        )
        .unwrap();
        Stack { server }
    }

    fn url(&self, path: &str) -> String {
        format!("http://{}{path}", self.server.addr())
    }

    /// Scrapes `GET /metrics` into `series -> value`.
    fn scrape(&self) -> BTreeMap<String, i64> {
        let response = http_get(&self.url("/metrics")).unwrap();
        assert!(response.status.is_success());
        let mut samples = BTreeMap::new();
        for line in response.body_text().lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("malformed sample line");
            samples.insert(series.to_string(), value.parse::<i64>().unwrap());
        }
        samples
    }

    fn down(self) {
        self.server.shutdown();
    }
}

fn sample(samples: &BTreeMap<String, i64>, series: &str) -> i64 {
    *samples.get(series).unwrap_or_else(|| {
        panic!(
            "series {series:?} missing from scrape; have: {:?}",
            samples.keys().collect::<Vec<_>>()
        )
    })
}

fn news_origin() -> OriginRef {
    Arc::new(NewsSite::new(NewsConfig::default()))
}

fn spec_with(url: &str, attributes: Vec<Attribute>) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("t", url);
    // No snapshot: the entry page is the adapted document itself.
    spec.snapshot = None;
    spec.rule(Target::Css("body".into()), attributes)
}

fn cookie_of(response: &Response) -> String {
    response
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string()
}

// --- Scenario 1: extraction keeps the article, drops every other region ---

#[test]
fn extraction_keeps_article_and_drops_boilerplate_regions() {
    let stack = Stack::up(
        spec_with("http://news.test/", vec![Attribute::ExtractMainContent]),
        news_origin(),
        ProxyConfig::default(),
    );

    let entry = http_get(&stack.url("/m/t/")).unwrap();
    assert!(entry.status.is_success());
    let body = entry.body_text();

    // The article (the readability top candidate) survives whole.
    assert!(body.contains("article-body"), "article dropped: {body}");
    assert!(body.contains("class=\"byline\""));
    // Every boilerplate region around it is gone.
    for marker in [
        "advert",
        "ad-banner",
        "navbar",
        "sidebar",
        "comment-list",
        "share social",
        "copyright",
    ] {
        assert!(!body.contains(marker), "boilerplate {marker:?} survived");
    }
    stack.down();
}

// --- Scenario 2: stripping removes exactly what the aggressiveness admits ---

#[test]
fn stripping_counts_exact_per_kind_metrics() {
    // Aggressiveness 2: ads, nav, footer, sidebar and social go;
    // comments (level 3) stay.
    let stack = Stack::up(
        spec_with(
            "http://news.test/",
            vec![Attribute::StripBoilerplate { aggressiveness: 2 }],
        ),
        news_origin(),
        ProxyConfig::default(),
    );
    let entry = http_get(&stack.url("/m/t/")).unwrap();
    assert!(entry.status.is_success());
    let body = entry.body_text();
    assert!(body.contains("article-body"));
    assert!(
        body.contains("comment-list"),
        "comments stripped at level 2"
    );
    for marker in ["advert", "navbar", "sidebar", "copyright", "share social"] {
        assert!(!body.contains(marker), "{marker:?} survived level 2");
    }

    // One entry build, one strip per top-most region: exact deltas.
    // The nested advert divs ride out with their leaderboard parent, so
    // kind="ad" counts 1, not 5.
    let samples = stack.scrape();
    for kind in ["ad", "nav", "footer", "sidebar", "social"] {
        assert_eq!(
            sample(
                &samples,
                &format!("msite_blocks_stripped_total{{kind=\"{kind}\"}}")
            ),
            1,
            "kind {kind}"
        );
    }
    assert!(
        !samples.keys().any(|k| k.contains("kind=\"comment\"")),
        "comment series must not exist at level 2"
    );
    stack.down();

    // Aggressiveness 3 additionally takes the comment section.
    let stack = Stack::up(
        spec_with(
            "http://news.test/",
            vec![Attribute::StripBoilerplate { aggressiveness: 3 }],
        ),
        news_origin(),
        ProxyConfig::default(),
    );
    let body = http_get(&stack.url("/m/t/")).unwrap().body_text();
    assert!(!body.contains("comment-list"));
    assert!(body.contains("article-body"));
    let samples = stack.scrape();
    assert_eq!(
        sample(&samples, "msite_blocks_stripped_total{kind=\"comment\"}"),
        1
    );
    stack.down();
}

// --- Scenario 3: fidelity tiers — 2G wire bytes strictly below WiFi ---

#[test]
fn gallery_fidelity_tiers_scale_image_bytes_with_bandwidth() {
    let stack = Stack::up(
        spec_with(
            "http://news.test/gallery",
            vec![Attribute::FidelityTier { tier: None }],
        ),
        news_origin(),
        ProxyConfig::default(),
    );
    let images = NewsConfig::default().gallery_images;

    // 2G client: the bandwidth header drives the auto tier.
    let low = http_request(
        &Request::get(&stack.url("/m/t/"))
            .unwrap()
            .with_header("x-msite-bandwidth", "2g"),
    )
    .unwrap();
    assert!(low.status.is_success());
    let cookie = cookie_of(&low);
    let low_body = low.body_text();
    let mut low_bytes = 0usize;
    for i in 1..=images {
        let name = format!("fid{i}_2g.png");
        assert!(low_body.contains(&name), "entry missing {name}");
        let img = http_request(
            &Request::get(&stack.url(&format!("/m/t/img/{name}")))
                .unwrap()
                .with_header("cookie", &cookie),
        )
        .unwrap();
        assert!(img.status.is_success(), "{name}: {}", img.status);
        assert!(img.body.starts_with(&[0x89, b'P', b'N', b'G']));
        low_bytes += img.body.len();
    }

    // Same session over WiFi: a separate per-tier cache entry.
    let high = http_request(
        &Request::get(&stack.url("/m/t/"))
            .unwrap()
            .with_header("cookie", &cookie)
            .with_header("x-msite-bandwidth", "wifi"),
    )
    .unwrap();
    assert!(high.status.is_success());
    let high_body = high.body_text();
    assert_ne!(low_body, high_body, "tiers must produce distinct entries");
    let mut high_bytes = 0usize;
    for i in 1..=images {
        let name = format!("fid{i}_wifi.png");
        assert!(high_body.contains(&name), "entry missing {name}");
        let img = http_request(
            &Request::get(&stack.url(&format!("/m/t/img/{name}")))
                .unwrap()
                .with_header("cookie", &cookie),
        )
        .unwrap();
        assert!(img.status.is_success(), "{name}: {}", img.status);
        high_bytes += img.body.len();
    }
    assert!(
        low_bytes < high_bytes,
        "2G wire bytes ({low_bytes}) must land strictly below WiFi ({high_bytes})"
    );

    // No header and no recognizable User-Agent falls back to WiFi, and
    // the per-tier cache serves it without a rebuild.
    let fallback = http_request(
        &Request::get(&stack.url("/m/t/"))
            .unwrap()
            .with_header("cookie", &cookie),
    )
    .unwrap();
    assert_eq!(fallback.body_text(), high_body);

    let samples = stack.scrape();
    assert_eq!(sample(&samples, "msite_fidelity_tier{tier=\"2g\"}"), 1);
    assert_eq!(sample(&samples, "msite_fidelity_tier{tier=\"wifi\"}"), 2);
    assert_eq!(
        sample(&samples, "msite_proxy_origin_fetches_total"),
        2,
        "two tiers, two builds; the fallback request is a cache hit"
    );
    stack.down();
}

// --- Scenario 4: byte determinism across pipeline parallelism widths ---

#[test]
fn adapted_output_is_byte_identical_across_parallel_widths() {
    let spec = || {
        let mut spec = AdaptationSpec::new("t", "http://news.test/");
        spec.snapshot = None;
        spec.rule(
            Target::Css("body".into()),
            vec![Attribute::StripBoilerplate { aggressiveness: 2 }],
        )
        .rule(
            Target::Css("#story".into()),
            vec![Attribute::Subpage {
                id: "story".into(),
                title: "Story".into(),
                ajax: false,
                prerender: false,
            }],
        )
    };
    let mut bodies: Vec<(String, String)> = Vec::new();
    for parallelism in [1usize, 4] {
        let stack = Stack::up(
            spec(),
            news_origin(),
            ProxyConfig {
                pipeline_parallelism: parallelism,
                ..ProxyConfig::default()
            },
        );
        let entry = http_get(&stack.url("/m/t/")).unwrap();
        assert!(entry.status.is_success());
        let cookie = cookie_of(&entry);
        let subpage = http_request(
            &Request::get(&stack.url("/m/t/s/story.html"))
                .unwrap()
                .with_header("cookie", &cookie),
        )
        .unwrap();
        assert!(subpage.status.is_success());
        bodies.push((entry.body_text(), subpage.body_text()));
        stack.down();
    }
    assert_eq!(
        bodies[0].0, bodies[1].0,
        "entry bytes diverge across widths"
    );
    assert_eq!(
        bodies[0].1, bodies[1].1,
        "subpage bytes diverge across widths"
    );
}
