//! Multi-session behavior: isolation between users, shared-cache
//! amortization across users, and thread-safety under concurrent load.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{Origin, OriginRef, Request, Response};
use msite_sites::{ForumConfig, ForumSite};
use std::sync::Arc;

fn deploy() -> (Arc<ForumSite>, Arc<ProxyServer>) {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let mut spec = AdaptationSpec::new("forum", &format!("{}/index.php", site.base_url()));
    spec.snapshot = Some(SnapshotSpec::default());
    let spec = spec.rule(
        Target::Css("#loginform".into()),
        vec![Attribute::Subpage {
            id: "login".into(),
            title: "Log in".into(),
            ajax: false,
            prerender: false,
        }],
    );
    let proxy = Arc::new(ProxyServer::new(
        spec,
        Arc::clone(&site) as OriginRef,
        ProxyConfig::default(),
    ));
    (site, proxy)
}

fn get(proxy: &ProxyServer, path: &str, cookie: Option<&str>) -> Response {
    let mut req = Request::get(&format!("http://p{path}")).unwrap();
    if let Some(c) = cookie {
        req = req.with_header("cookie", c);
    }
    proxy.handle(&req)
}

fn cookie_of(response: &Response) -> String {
    response
        .headers
        .get("set-cookie")
        .expect("cookie")
        .split(';')
        .next()
        .unwrap()
        .to_string()
}

#[test]
fn cookie_jars_do_not_leak_between_users() {
    let (site, proxy) = deploy();
    let alice = cookie_of(&get(&proxy, "/m/forum/", None));
    let bob = cookie_of(&get(&proxy, "/m/forum/", None));
    assert_ne!(alice, bob);

    // Alice logs into the origin through the passthrough.
    let (user, pass) = ForumSite::demo_credentials();
    let login = proxy.handle(
        &Request::post_form(
            "http://p/m/forum/o/login.php",
            &[("vb_login_username", user), ("vb_login_password", pass)],
        )
        .unwrap()
        .with_header("cookie", &alice),
    );
    assert!(login.status.is_redirect());

    // Alice reaches the private origin area; Bob is bounced to login.
    let alice_private = get(&proxy, "/m/forum/o/private/index.php", Some(&alice));
    assert!(alice_private.status.is_success());
    let bob_private = get(&proxy, "/m/forum/o/private/index.php", Some(&bob));
    assert!(bob_private.status.is_redirect());
    drop(site);
}

#[test]
fn session_files_are_per_user() {
    let (_site, proxy) = deploy();
    let alice = cookie_of(&get(&proxy, "/m/forum/", None));
    let bob = cookie_of(&get(&proxy, "/m/forum/", None));
    let _ = get(&proxy, "/m/forum/s/login.html", Some(&alice));
    let _ = get(&proxy, "/m/forum/s/login.html", Some(&bob));
    let alice_id = alice.split('=').nth(1).unwrap();
    let bob_id = bob.split('=').nth(1).unwrap();
    let paths = proxy.stored_files();
    assert!(paths.iter().any(|p| p.contains(alice_id)));
    assert!(paths.iter().any(|p| p.contains(bob_id)));
    // Logout wipes only the owner's directory.
    let _ = get(&proxy, "/m/forum/logout", Some(&alice));
    let paths = proxy.stored_files();
    assert!(!paths.iter().any(|p| p.contains(alice_id)));
    assert!(paths.iter().any(|p| p.contains(bob_id)));
}

#[test]
fn snapshot_render_amortized_across_many_users() {
    let (_site, proxy) = deploy();
    for _ in 0..25 {
        let entry = get(&proxy, "/m/forum/", None);
        assert!(entry.status.is_success());
    }
    let stats = proxy.stats();
    assert_eq!(stats.full_renders, 1, "one render serves 25 users");
    assert_eq!(stats.sessions_created, 25);
    assert!(proxy.cache().stats().hits >= 24);
    assert!(proxy.cache().amortized_savings().as_millis() > 0);
}

#[test]
fn concurrent_users_hammering_the_proxy() {
    let (_site, proxy) = deploy();
    // Warm once so threads race on the fast path and the session map.
    let _ = get(&proxy, "/m/forum/", None);
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let proxy = Arc::clone(&proxy);
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let entry = proxy.handle(&Request::get("http://p/m/forum/").unwrap());
                    assert!(entry.status.is_success());
                    let cookie = cookie_of(&entry);
                    let login = proxy.handle(
                        &Request::get("http://p/m/forum/s/login.html")
                            .unwrap()
                            .with_header("cookie", &cookie),
                    );
                    assert!(login.status.is_success(), "{}", login.status);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panics");
    }
    let stats = proxy.stats();
    assert_eq!(stats.requests, 8 * 20 * 2 + 1);
    // The single-flight layer makes this exact: the warmup rendered the
    // snapshot once and no later request may render it again.
    assert_eq!(stats.full_renders, 1);
}

#[test]
fn cold_stampede_collapses_to_one_render() {
    let (_site, proxy) = deploy();
    // No warmup: 8 users hit the cold proxy at the same instant, all
    // missing on the shared entry page simultaneously.
    let gate = Arc::new(std::sync::Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let proxy = Arc::clone(&proxy);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                let entry = proxy.handle(&Request::get("http://p/m/forum/").unwrap());
                assert!(entry.status.is_success());
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panics");
    }
    let stats = proxy.stats();
    assert_eq!(
        stats.full_renders, 1,
        "cold stampede must coalesce to one render"
    );
    assert_eq!(stats.renders_coalesced, 7);
    assert_eq!(proxy.cache().stats().coalesced, 7);
    assert_eq!(
        stats.sessions_created, 8,
        "coalescing must not merge sessions"
    );
}

#[test]
fn streamed_cold_stampede_collapses_to_one_render() {
    use msite::proxy::STREAM_HEADER;
    let (_site, proxy) = deploy();
    // No warmup: 8 streamed requests hit the cold proxy at once. The
    // streaming path must claim/join the same single-flight the batch
    // path uses, so exactly one pipeline run serves all of them.
    let gate = Arc::new(std::sync::Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let proxy = Arc::clone(&proxy);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                let entry = proxy.handle(
                    &Request::get("http://p/m/forum/")
                        .unwrap()
                        .with_header(STREAM_HEADER, "chunked"),
                );
                assert!(entry.status.is_success());
                // Draining the stream is what runs the leader's
                // deferred pipeline (and completes the flight).
                entry.into_collected().body_text()
            })
        })
        .collect();
    let bodies: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("no thread panics"))
        .collect();
    assert!(
        bodies.iter().all(|b| *b == bodies[0] && !b.is_empty()),
        "every streamed client gets the same entry bytes"
    );
    let stats = proxy.stats();
    assert_eq!(
        stats.full_renders, 1,
        "streamed cold stampede must coalesce to one render"
    );
    assert_eq!(stats.renders_coalesced, 7);
    assert_eq!(stats.streamed_responses, 8);
}

#[test]
fn mixed_streamed_and_batch_stampede_still_renders_once() {
    use msite::proxy::STREAM_HEADER;
    let (_site, proxy) = deploy();
    // Half the cold stampede opts into streaming, half stays batch;
    // whichever request leads, the other seven must join its flight.
    let gate = Arc::new(std::sync::Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let proxy = Arc::clone(&proxy);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut req = Request::get("http://p/m/forum/").unwrap();
                if i % 2 == 0 {
                    req = req.with_header(STREAM_HEADER, "chunked");
                }
                gate.wait();
                let entry = proxy.handle(&req);
                assert!(entry.status.is_success());
                assert!(!entry.into_collected().body_text().is_empty());
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panics");
    }
    let stats = proxy.stats();
    assert_eq!(
        stats.full_renders, 1,
        "mixed stampede must coalesce to one render"
    );
    assert_eq!(stats.renders_coalesced, 7);
    assert_eq!(stats.streamed_responses, 4);
}

#[test]
fn session_cookie_scoped_to_proxy_base() {
    let (_site, proxy) = deploy();
    let entry = get(&proxy, "/m/forum/", None);
    let set_cookie = entry.headers.get("set-cookie").unwrap();
    assert!(set_cookie.contains("Path=/m/forum"));
    assert!(set_cookie.contains("HttpOnly"));
}
