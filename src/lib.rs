//! Umbrella crate for the m.Site reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can use a single dependency. Library users should
//! depend on the individual crates (`msite`, `msite-html`, ...) directly.

pub use msite;
pub use msite_device as device;
pub use msite_html as html;
pub use msite_net as net;
pub use msite_render as render;
pub use msite_selectors as selectors;
pub use msite_sites as sites;
