//! End-to-end over real TCP: the synthetic forum and the m.Site proxy
//! each run as actual HTTP servers on localhost, and a real HTTP client
//! walks the mobile flow.
//!
//! Run with: `cargo run --example live_proxy`
//! (pass `--serve` to keep the servers up for manual browsing)

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{http_get, http_request, HttpServer, OriginRef, Request};
use msite_sites::{ForumConfig, ForumSite};
use msite_support::telemetry::{Telemetry, TRACE_HEADER};
use std::sync::Arc;

fn main() {
    // The origin forum, served over real TCP.
    let site = Arc::new(ForumSite::new(ForumConfig {
        host: "127.0.0.1".to_string(), // answer as the bound host
        ..ForumConfig::default()
    }));
    let origin_server =
        HttpServer::bind("127.0.0.1:0", Arc::clone(&site) as OriginRef).expect("bind origin");
    let origin_url = format!("http://{}/index.php", origin_server.addr());
    println!("origin forum listening on http://{}", origin_server.addr());

    // The proxy: points at the live origin over the loopback.
    let origin_client: OriginRef = Arc::new(move |req: &Request| {
        http_request(req).unwrap_or_else(|e| {
            msite_net::Response::error(msite_net::Status::BAD_GATEWAY, &e.to_string())
        })
    });
    let mut spec = AdaptationSpec::new("forum", &origin_url);
    spec.snapshot = Some(SnapshotSpec::default());
    let spec = spec.rule(
        Target::Css("#loginform".into()),
        vec![Attribute::Subpage {
            id: "login".into(),
            title: "Log in".into(),
            ajax: false,
            prerender: false,
        }],
    );
    // One telemetry handle shared by the proxy and its HTTP server:
    // connection counters, proxy counters, and request spans all land
    // in the same registry, scraped from GET /metrics below.
    let telemetry = Telemetry::new();
    let proxy = Arc::new(ProxyServer::new(
        spec,
        origin_client,
        ProxyConfig {
            telemetry: Some(telemetry.clone()),
            ..ProxyConfig::default()
        },
    ));
    // Explicit executor sizing: 4 connection workers, shed beyond 32
    // queued connections (503 + x-msite-error: overloaded).
    let proxy_server = HttpServer::bind_with_telemetry(
        "127.0.0.1:0",
        Arc::clone(&proxy) as OriginRef,
        msite_net::ServerConfig {
            workers: 4,
            queue_depth: 32,
        },
        telemetry,
    )
    .expect("bind proxy");
    println!(
        "m.Site proxy listening on http://{}/m/forum/",
        proxy_server.addr()
    );

    // A real mobile client walk.
    let entry = http_get(&format!("http://{}/m/forum/", proxy_server.addr())).expect("entry");
    println!(
        "\nGET /m/forum/           -> {} ({} bytes)",
        entry.status,
        entry.body.len()
    );
    assert!(entry.status.is_success());
    let cookie = entry
        .headers
        .get("set-cookie")
        .and_then(|c| c.split(';').next())
        .expect("session cookie")
        .to_string();

    let snapshot = http_request(
        &Request::get(&format!(
            "http://{}/m/forum/img/snapshot.png",
            proxy_server.addr()
        ))
        .unwrap()
        .with_header("cookie", &cookie),
    )
    .expect("snapshot");
    println!(
        "GET /m/forum/img/snapshot.png -> {} ({} bytes, PNG={})",
        snapshot.status,
        snapshot.body.len(),
        snapshot.body.starts_with(&[0x89, b'P', b'N', b'G'])
    );

    let login = http_request(
        &Request::get(&format!(
            "http://{}/m/forum/s/login.html",
            proxy_server.addr()
        ))
        .unwrap()
        .with_header("cookie", &cookie),
    )
    .expect("login subpage");
    println!(
        "GET /m/forum/s/login.html     -> {} ({} bytes)",
        login.status,
        login.body.len()
    );
    assert!(login.body_text().contains("vb_login_username"));

    // No embedder-side folding needed: the server publishes its
    // connection counters (shedding included) straight into the shared
    // registry, so the proxy's view already agrees with the server's.
    let server_stats = proxy_server.stats();
    assert_eq!(
        proxy.stats().overload_rejections,
        server_stats.rejected_overload
    );
    println!(
        "\norigin served {} requests, proxy served {} (accepted {}, shed {})",
        origin_server.requests_served(),
        server_stats.served,
        server_stats.accepted,
        proxy.stats().overload_rejections
    );

    // The observability surface, over the same socket as the traffic.
    let trace_id = login.headers.get(TRACE_HEADER).expect("trace header");
    let spans =
        http_get(&format!("http://{}/trace/{trace_id}", proxy_server.addr())).expect("trace");
    println!(
        "GET /trace/{trace_id}  -> {} ({} spans)",
        spans.status,
        spans.body_text().matches("\"name\"").count()
    );
    let metrics = http_get(&format!("http://{}/metrics", proxy_server.addr())).expect("metrics");
    let scrape = metrics.body_text();
    println!("GET /metrics sample:");
    for line in scrape
        .lines()
        .filter(|l| l.starts_with("msite_proxy_requests_total") || l.starts_with("msite_server_"))
        .take(6)
    {
        println!("  {line}");
    }
    let health = http_get(&format!("http://{}/healthz", proxy_server.addr())).expect("healthz");
    println!("GET /healthz -> {} {}", health.status, health.body_text());

    if std::env::args().any(|a| a == "--serve") {
        println!(
            "\nservers staying up; open http://{}/m/forum/ (ctrl-c to quit)",
            proxy_server.addr()
        );
        loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
        }
    }
    proxy_server.shutdown();
    origin_server.shutdown();
    println!("done.");
}
