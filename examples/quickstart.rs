//! Quickstart: mobilize a page in a dozen lines.
//!
//! The three-step m.Site workflow:
//! 1. the admin tool emits an adaptation spec (here: built in code);
//! 2. the code generator turns it into a proxy program;
//! 3. the proxy serves the mobilized page.
//!
//! Run with: `cargo run --example quickstart`

use msite::attributes::{AdaptationSpec, Attribute, SourceFilter, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite::{dsl, SESSION_COOKIE};
use msite_net::{Origin, OriginRef, Request, Response};
use std::sync::Arc;

fn main() {
    // An "existing web site" — any Origin will do.
    let origin: OriginRef = Arc::new(|_req: &Request| {
        Response::html(
            r#"<html><head><title>Tiny Shop</title></head><body>
            <div id="banner"><img src="/ad728.gif" width="728" height="90"></div>
            <form id="login" action="/login.php"><input name="user"><input name="pass" type="password"></form>
            <div id="catalog"><p>Hand planes, chisels, and saws.</p></div>
            </body></html>"#,
        )
    });

    // Step 1 — the adaptation spec: drop the desktop banner, split the
    // login form into its own subpage, retitle for mobile.
    let mut spec = AdaptationSpec::new("shop", "http://tinyshop.test/index.php");
    spec.snapshot = None; // no pre-rendered snapshot in the quickstart
    let spec = spec
        .filter(SourceFilter::SetTitle {
            title: "Tiny Shop (mobile)".into(),
        })
        .rule(Target::Css("#banner".into()), vec![Attribute::Remove])
        .rule(
            Target::Css("#login".into()),
            vec![Attribute::Subpage {
                id: "login".into(),
                title: "Log in".into(),
                ajax: false,
                prerender: false,
            }],
        );

    // Step 2 — generate the proxy program (what the paper's tool writes
    // out as PHP shell code).
    let script = dsl::to_script(&spec);
    println!("--- generated proxy program ---\n{script}");

    // Step 3 — deploy: the proxy loads the program and serves clients.
    let proxy = ProxyServer::from_script(&script, origin, ProxyConfig::default())
        .expect("generated program always parses");

    let entry = proxy.handle(&Request::get("http://proxy.test/m/shop/").unwrap());
    println!(
        "--- mobile entry page ({}) ---\n{}",
        entry.status,
        entry.body_text()
    );

    // Follow the session cookie to fetch the login subpage.
    let cookie = entry
        .headers
        .get("set-cookie")
        .and_then(|c| c.split(';').next())
        .expect("proxy issues a session cookie");
    assert!(cookie.starts_with(SESSION_COOKIE));
    let login = proxy.handle(
        &Request::get("http://proxy.test/m/shop/s/login.html")
            .unwrap()
            .with_header("cookie", cookie),
    );
    println!(
        "--- login subpage ({}) ---\n{}",
        login.status,
        login.body_text()
    );

    let stats = proxy.stats();
    println!(
        "--- proxy stats: {} requests, {} lightweight, {} full renders ---",
        stats.requests, stats.lightweight, stats.full_renders
    );
    assert_eq!(stats.full_renders, 0, "this spec never needs a browser");
}
