//! Figure 6 reproduction: enhancing a CraigsList-style site with AJAX
//! for the iPad (§4.5).
//!
//! CraigsList "does not ordinarily require any AJAX requests, which for a
//! mobile device means an overuse of the browser's tiny back button, and
//! continual reloading of pages." The adaptation splits the view into two
//! panes: the listing links on the left, the selected ad loaded
//! asynchronously through the proxy on the right.
//!
//! Run with: `cargo run --example craigslist_ajax`

use msite::attributes::{AdaptationSpec, Attribute, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{Origin, OriginRef, Request};
use msite_sites::{ClassifiedsConfig, ClassifiedsSite};
use std::sync::Arc;

fn main() {
    let site = Arc::new(ClassifiedsSite::new(ClassifiedsConfig::default()));
    let search_url = format!("{}/search?cat=tools&page=0", site.base_url());

    // Before: every click is a full page load.
    let listing_id = site.listing_id("tools", 0);
    let before_list = site.handle(&Request::get(&search_url).unwrap());
    let before_detail = site
        .handle(&Request::get(&format!("{}/listing/{listing_id}.html", site.base_url())).unwrap());
    println!("--- original site (no AJAX) ---");
    println!("search page : {} bytes", before_list.body.len());
    println!(
        "detail page : {} bytes (full reload per ad)",
        before_detail.body.len()
    );

    // The adaptation: two panes + links converted to asynchronous loads.
    let mut spec = AdaptationSpec::new("cl", &search_url);
    spec.snapshot = None; // the iPad renders HTML fine; no snapshot needed
    let spec = spec
        .rule(
            Target::Css("#results".into()),
            vec![
                // Two-pane layout: listing list left, detail right.
                Attribute::SetAttr {
                    name: "style".into(),
                    value: "float:left;width:44%;overflow:auto".into(),
                },
                Attribute::InsertAfter {
                    html: "<div id=\"msite-detail\" style=\"float:right;width:54%\">\
                           <p>Select a listing.</p></div>"
                        .into(),
                },
                // Every ad link becomes an async load into the right pane.
                Attribute::LinksToAjax {
                    target: "#msite-detail".into(),
                },
            ],
        )
        .rule(
            Target::Dock(msite::attributes::DockObject::Title),
            vec![Attribute::SetAttr {
                name: "text".into(),
                value: "tools classifieds (iPad)".into(),
            }],
        );

    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    let entry = proxy.handle(&Request::get("http://proxy.test/m/cl/").unwrap());
    let cookie = entry
        .headers
        .get("set-cookie")
        .and_then(|c| c.split(';').next())
        .unwrap()
        .to_string();
    println!("\n--- adapted two-pane page ---");
    println!("entry page  : {} bytes", entry.body.len());
    let html = entry.body_text();
    assert!(html.contains("msite-detail"));
    assert!(html.contains("msiteLoad("));
    let rewritten = html.matches("msiteLoad(").count();
    println!("links rewritten to async loads: {rewritten}");

    // Clicking an ad now costs one proxy round trip for the fragment.
    let fragment = proxy.handle(
        &Request::get(&format!(
            "http://proxy.test/m/cl/proxy?action=1&p={listing_id}"
        ))
        .unwrap()
        .with_header("cookie", &cookie),
    );
    println!(
        "async detail fragment: {} ({} bytes vs {} for the full reload)",
        fragment.status,
        fragment.body.len(),
        before_detail.body.len()
    );
    assert!(fragment.status.is_success());
    assert!(fragment.body_text().contains("postingbody"));

    // Browsing 10 ads: full-reload navigation vs the adapted flow.
    let reload_bytes = 10 * (before_list.body.len() + before_detail.body.len());
    let ajax_bytes = entry.body.len() + 10 * fragment.body.len();
    println!("\n--- browsing 10 ads ---");
    println!("original (list+detail reload each time): {reload_bytes} bytes");
    println!("adapted  (one entry + 10 fragments)    : {ajax_bytes} bytes");
    println!(
        "bytes saved: {:.0}%",
        100.0 * (1.0 - ajax_bytes as f64 / reload_bytes as f64)
    );
    assert!(ajax_bytes < reload_bytes);
}
