//! A compact Figure 7 demonstration: throughput collapses when every
//! request needs a full browser instance, and recovers when the
//! lightweight proxy path serves the rest.
//!
//! The full sweep (9 points, 3 trials, calibrated PHP-equivalent
//! overhead) lives in `cargo run -p msite-bench --bin experiments -- fig7`;
//! this example runs three quick points.
//!
//! Run with: `cargo run --release --example scalability_demo`

use msite::attributes::{AdaptationSpec, SnapshotSpec};
use msite::baseline::{HighlightConfig, HighlightProxy};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{Origin, OriginRef, Prng, Request};
use msite_render::browser::BrowserConfig;
use msite_sites::{ForumConfig, ForumSite};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let page_url = format!("{}/index.php", site.base_url());

    // m.Site proxy: snapshot pre-rendered once, then everything is cheap.
    let mut spec = AdaptationSpec::new("forum", &page_url);
    spec.snapshot = Some(SnapshotSpec::default());
    let proxy = Arc::new(ProxyServer::new(
        spec,
        Arc::clone(&site) as OriginRef,
        ProxyConfig {
            scripted_overhead: Duration::from_micros(3_500),
            ..ProxyConfig::default()
        },
    ));
    // Warm the shared snapshot cache (the amortized render).
    let warm = proxy.handle(&Request::get("http://p/m/forum/").unwrap());
    assert!(warm.status.is_success());

    // Highlight baseline: full browser instance per request.
    let highlight = Arc::new(HighlightProxy::new(
        &page_url,
        Arc::clone(&site) as OriginRef,
        HighlightConfig {
            browser_config: BrowserConfig::paper_testbed(),
            ..HighlightConfig::default()
        },
    ));

    println!("requests satisfied per minute vs. % needing a full browser");
    println!("(2 workers, 1.5 s windows, scaled to per-minute)\n");
    println!("{:>18} {:>14}", "% full render", "requests/min");
    for percent in [100.0f64, 10.0, 0.0] {
        let rate = measure(&proxy, &highlight, percent, Duration::from_millis(1_500));
        println!("{percent:>17}% {rate:>14.0}");
    }
    println!("\n(the paper's Figure 7: 224/min at 100% -> 29,038/min at 0%)");
}

/// Runs a measurement window with two workers; each request draws U[0,1]
/// against `percent` to decide whether it needs the full browser.
fn measure(
    proxy: &Arc<ProxyServer>,
    highlight: &Arc<HighlightProxy>,
    percent: f64,
    window: Duration,
) -> f64 {
    let satisfied = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|worker| {
            let proxy = Arc::clone(proxy);
            let highlight = Arc::clone(highlight);
            let satisfied = Arc::clone(&satisfied);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = Prng::new(0xF1607 + worker);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let needs_browser = rng.unit_f64() * 100.0 < percent;
                    let ok = if needs_browser {
                        highlight
                            .render_for(&format!("w{worker}-{i}"))
                            .status
                            .is_success()
                    } else {
                        proxy
                            .handle(&Request::get("http://p/m/forum/").unwrap())
                            .status
                            .is_success()
                    };
                    if ok {
                        satisfied.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    satisfied.load(Ordering::Relaxed) as f64 * 60.0 / elapsed
}
