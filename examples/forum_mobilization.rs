//! Full reproduction of the paper's §4.2–4.3 workflow: mobilizing the
//! SawmillCreek-style forum.
//!
//! The administrator:
//! - loads the entry page into the visual tool and inspects objects;
//! - applies the snapshot attribute (scaled, low fidelity, cached 60 min);
//! - splits the login form into a subpage, with CSS dependencies and the
//!   logo copied in (src swapped to a mobile version) — Figure 5;
//! - rewrites the horizontally scrolling nav links into two vertical
//!   columns, loaded asynchronously on demand;
//! - replaces the 728-px leaderboard ad with a mobile ad;
//! - generates the proxy program and deploys it.
//!
//! Then two mobile users browse, and the example reports what the paper's
//! Table 1 would measure on this adaptation.
//!
//! Run with: `cargo run --example forum_mobilization`

use msite::admin::PageModel;
use msite::attributes::{Attribute, SnapshotSpec, SourceFilter};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_device::{simulate_page_load, simulate_snapshot_view, CostModel, DeviceProfile};
use msite_net::{LinkModel, Origin, OriginRef, Request};
use msite_sites::{ForumConfig, ForumSite, PageManifest};
use std::sync::Arc;

fn main() {
    // ---- The origin: a 66k-member vBulletin-style community ----------
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    println!(
        "origin: {} ({} bytes entry page incl. {} subresources)",
        site.base_url(),
        site.total_index_weight(),
        site.index_resources().len()
    );

    // ---- Step 1: load the page into the visual tool -------------------
    let index_url = format!("{}/index.php", site.base_url());
    let page_html = site.handle(&Request::get(&index_url).unwrap()).body_text();
    let model = PageModel::load(&index_url, &page_html, 1024);
    println!("\nselectable objects (admin tool view):");
    for object in model.selectable_objects().iter().take(12) {
        println!(
            "  {:<14} <{}> at ({:>4},{:>4}) {}x{}  {:?}",
            object.selector,
            object.tag,
            object.rect.x as i64,
            object.rect.y as i64,
            object.rect.w as i64,
            object.rect.h as i64,
            object.preview
        );
    }

    // ---- Step 2: assign attributes ------------------------------------
    let (spec, script) = model
        .start_spec("forum")
        .snapshot(Some(SnapshotSpec {
            scale: 0.5,
            quality: 40,
            cache_ttl_secs: 3_600, // "set to expire after an hour"
            viewport_width: 1_024,
        }))
        .add_filter(SourceFilter::SetTitle {
            title: "Sawmill Creek (mobile)".into(),
        })
        // Figure 5: login subpage with dependencies + relabeled logo copy.
        .assign(
            "#loginform",
            vec![
                Attribute::Subpage {
                    id: "login".into(),
                    title: "Log in".into(),
                    ajax: false,
                    prerender: false,
                },
                Attribute::Dependency {
                    selector: "head link".into(),
                },
            ],
        )
        .assign(
            "#header",
            vec![Attribute::CopyTo {
                subpage: "login".into(),
                position: msite::attributes::Position::Top,
                set_attr: Some(("src".into(), "/images/mobile_logo.gif".into())),
            }],
        )
        // Nav links: vertical two-column rewrite, loaded via AJAX.
        .assign(
            "#navrow",
            vec![
                Attribute::LinksToColumns { columns: 2 },
                Attribute::Subpage {
                    id: "nav".into(),
                    title: "Navigate".into(),
                    ajax: true,
                    prerender: false,
                },
            ],
        )
        // The 728px leaderboard cannot fit a phone: swap for a mobile ad.
        .assign(
            "#leaderboard",
            vec![Attribute::ReplaceWith {
                html: "<img src=\"/images/mobile_logo.gif\" width=\"300\" height=\"50\" alt=\"mobile ad\">".into(),
            }],
        )
        // The forum listing is the content users came for.
        .assign(
            "#forumbits",
            vec![Attribute::Subpage {
                id: "forums".into(),
                title: "Forums".into(),
                ajax: false,
                prerender: false,
            }],
        )
        .generate();

    println!(
        "\n--- generated proxy program ({} lines) ---",
        script.lines().count()
    );
    for line in script.lines().take(16) {
        println!("  {line}");
    }
    println!("  ...");

    // ---- Step 3: deploy and browse -------------------------------------
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    let entry = proxy.handle(&Request::get("http://proxy.test/m/forum/").unwrap());
    let cookie = entry
        .headers
        .get("set-cookie")
        .and_then(|c| c.split(';').next())
        .unwrap()
        .to_string();
    println!(
        "\nmobile entry page: {} ({} bytes of HTML + snapshot image)",
        entry.status,
        entry.body.len()
    );
    let snapshot = proxy.handle(
        &Request::get("http://proxy.test/m/forum/img/snapshot.png")
            .unwrap()
            .with_header("cookie", &cookie),
    );
    println!("snapshot image: {} bytes (PNG)", snapshot.body.len());

    // A second user hits the warm cache.
    let entry2 = proxy.handle(&Request::get("http://proxy.test/m/forum/").unwrap());
    assert!(entry2.status.is_success());
    let login_page = proxy.handle(
        &Request::get("http://proxy.test/m/forum/s/login.html")
            .unwrap()
            .with_header("cookie", &cookie),
    );
    println!(
        "login subpage: {} ({} bytes)",
        login_page.status,
        login_page.body.len()
    );
    assert!(login_page.body_text().contains("mobile_logo.gif"));

    let stats = proxy.stats();
    println!(
        "\nproxy stats: {} requests / {} lightweight / {} full renders; amortized {:?} of rendering",
        stats.requests,
        stats.lightweight,
        stats.full_renders,
        proxy.cache().amortized_savings()
    );

    // ---- What the devices experience (Table 1 view) --------------------
    let manifest = PageManifest::fetch(site.as_ref(), &index_url);
    let cost = CostModel::default();
    let full_bb = simulate_page_load(
        &DeviceProfile::blackberry_tour(),
        &LinkModel::THREE_G,
        &manifest,
        &cost,
    );
    let snap_bb = simulate_snapshot_view(
        &DeviceProfile::blackberry_tour(),
        &LinkModel::THREE_G,
        entry.body.len(),
        snapshot.body.len().min(50_000),
        (512 * 1400) as u64,
        &cost,
    );
    // Export the generated artifacts like the paper's on-disk layout.
    let out_dir = std::path::Path::new("target/msite-demo");
    match proxy.export_files(out_dir) {
        Ok(count) => println!(
            "\nexported {count} generated files under {}",
            out_dir.display()
        ),
        Err(e) => println!("\nexport skipped: {e}"),
    }

    println!("\nBlackBerry Tour over 3G:");
    println!("  full desktop page : {:>6.1} s", full_bb.total_s());
    println!("  m.Site snapshot   : {:>6.1} s", snap_bb.total_s());
    println!(
        "  speedup           : {:>6.1}x (the paper's §3.3 claims ~5x)",
        full_bb.total_s() / snap_bb.total_s()
    );
}
